//! Serves the calendar application's enforcement proxy over TCP.
//!
//! Seeds the calendar database, wraps it in the enforcing `SqlProxy`, and
//! exposes it through `bep-server`'s wire protocol. Clients connect with
//! `bep_server::Client`, open sessions with their `MyUId`, and every
//! `SELECT` they send is decided against the calendar policy — the
//! networked version of the `calendar_proxy` example.
//!
//! Run a long-lived server (stops when a client sends `shutdown`):
//!
//! ```text
//! cargo run --example serve_calendar -- 127.0.0.1:4270
//! ```
//!
//! Run the self-contained smoke check used by CI — starts the server on
//! an ephemeral port, drives one `Begin`/`Execute`/`End` round-trip
//! through the client, asks for shutdown, and verifies a clean drain:
//!
//! ```text
//! cargo run --example serve_calendar -- --smoke
//! ```
//!
//! Add `--metrics` to either mode to surface the observability layer: in
//! smoke mode the client scrapes the `metrics` frame and prints the full
//! Prometheus text exposition (CI greps it for the expected metric
//! families); in serving mode the drained server prints a final
//! exposition snapshot on shutdown.
//!
//! Add `--journal-tail` to follow the live decision journal over the
//! wire: a second client `subscribe`s and prints one human-readable line
//! per decision (in smoke mode, the pushed batch for the smoke decision
//! itself — CI greps the lines).
//!
//! At startup, the proxy lints every handler SQL template of the calendar
//! application against the policy's view heads and prints any columns a
//! handler selects that no view projects (such templates are denied for
//! *every* session, which differential testing cannot surface).

use std::sync::Arc;
use std::time::Duration;

use appsim::{seed_app, Scale, CALENDAR};
use bep_server::{Client, EventBatch, ExecOutcome, Server, ServerConfig};
use beyond_enforcement::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sqlir::Value;

fn calendar_proxy() -> Arc<SqlProxy> {
    let mut rng = SmallRng::seed_from_u64(2023);
    let mut db = CALENDAR.empty_db();
    seed_app("calendar", &mut db, &mut rng, &Scale::medium());
    let schema = CALENDAR.schema();
    let policy = CALENDAR.policy().expect("calendar policy compiles");
    let proxy = Arc::new(SqlProxy::new(
        db,
        ComplianceChecker::new(schema, policy),
        ProxyConfig {
            spans: true,
            exemplars_per_template: 4,
            ..ProxyConfig::default()
        },
    ));

    // Startup policy lint: every column the application's handlers select
    // must appear in some view's head, or the query is uniformly denied.
    let mut templates = Vec::new();
    for handler in &CALENDAR.app().handlers {
        for stmt in &handler.body {
            stmt.walk_sql(&mut |sql| templates.push(sql.to_string()));
        }
    }
    let warnings = proxy.lint_templates(templates.iter().map(String::as_str));
    if warnings.is_empty() {
        println!(
            "lint: policy view heads cover all {} handler template(s)",
            templates.len()
        );
    } else {
        for w in &warnings {
            println!("lint: warning: {w}");
        }
    }
    proxy
}

/// Renders one decision event as a human-readable tail line.
fn tail_line(e: &bep_core::DecisionEvent, dropped: u64) -> String {
    format!(
        "journal: seq={} session={} verdict={} tier={} hash={:016x} total_us={:.1} \
         spans={} rw={} cc={} dropped={}",
        e.seq,
        e.session,
        e.verdict.label(),
        e.tier.label(),
        e.template_hash,
        e.total_ns as f64 / 1_000.0,
        e.span.spans,
        e.span.rewrite_iterations,
        e.span.containment_checks,
        dropped,
    )
}

/// Follows the live journal on its own connection, printing one line per
/// decision until the server goes away.
fn tail_journal(addr: std::net::SocketAddr) {
    let _ = std::thread::Builder::new()
        .name("journal-tail".into())
        .spawn(move || {
            let mut c = match Client::connect(addr, Duration::from_secs(3600)) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("journal: tail connect failed: {e}");
                    return;
                }
            };
            if let Err(e) = c.subscribe(0) {
                eprintln!("journal: subscribe failed: {e}");
                return;
            }
            while let Ok(EventBatch { events, dropped }) = c.next_events() {
                for e in &events {
                    println!("{}", tail_line(e, dropped));
                }
            }
        });
}

fn main() {
    let mut smoke_mode = false;
    let mut metrics = false;
    let mut journal_tail = false;
    let mut bind = "127.0.0.1:4270".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            "--metrics" => metrics = true,
            "--journal-tail" => journal_tail = true,
            other => bind = other.to_string(),
        }
    }
    if smoke_mode {
        smoke(metrics, journal_tail);
        return;
    }

    let proxy = calendar_proxy();
    let server = Server::start(Arc::clone(&proxy), ServerConfig::default(), &bind)
        .expect("bind enforcement server");
    println!(
        "bep-server: serving the calendar policy on {}",
        server.addr()
    );
    println!(
        "  protocol : length-prefixed JSON frames, version {}",
        bep_server::PROTOCOL_VERSION
    );
    if metrics {
        println!("  metrics  : scrape with a `metrics` frame (Prometheus text)");
    }
    if journal_tail {
        println!("  journal  : tailing live decisions on a subscribed connection");
        tail_journal(server.addr());
    }
    println!("  stop with: a client `shutdown` request");
    server.wait();
    println!("bep-server: drained and stopped");
    let stats = proxy.stats();
    println!(
        "audit: writes allowed={} blocked={} passthrough={}; {} statement(s) \
         bypassed enforcement via execute_unchecked",
        stats.write_allowed,
        stats.write_blocked,
        stats.write_passthrough,
        stats.unchecked_statements
    );
    if metrics {
        println!("\nfinal metrics exposition:");
        print!("{}", proxy.metrics_text());
    }
}

/// The CI smoke check: one full client round-trip and a clean shutdown.
/// With `metrics`, the client also scrapes the exposition endpoint and
/// the full Prometheus text is printed for CI to grep. With
/// `journal_tail`, a second connection subscribes to the live journal and
/// the pushed batch for the smoke decision is printed for CI to grep.
fn smoke(metrics: bool, journal_tail: bool) {
    let proxy = calendar_proxy();
    let server = Server::start(Arc::clone(&proxy), ServerConfig::default(), "127.0.0.1:0")
        .expect("bind enforcement server");
    let addr = server.addr();
    println!("smoke: server on {addr}");

    let client_side = std::thread::spawn(move || {
        let io = Duration::from_secs(10);
        let mut c = Client::connect(addr, io).expect("connect");

        // Begin: a calendar user session (the data generator's first uid).
        let session = c
            .begin(vec![("MyUId".into(), Value::Int(appsim::FIRST_UID))])
            .expect("begin session");
        println!("smoke: began session {session}");

        // Execute: the policy's own attendance view is always allowed.
        let r = c
            .execute(
                session,
                "SELECT EId FROM Attendance WHERE UId = ?MyUId",
                &[],
            )
            .expect("execute");
        match &r {
            ExecOutcome::Rows(rows) => {
                println!(
                    "smoke: executed, {} row(s) allowed through",
                    rows.rows.len()
                );
            }
            other => panic!("expected rows, got {other:?}"),
        }

        // End: idempotent teardown.
        assert!(c.end(session).expect("end"), "session was live");
        assert!(!c.end(session).expect("end again"), "second end is a no-op");
        println!("smoke: session ended cleanly");

        if journal_tail {
            // Subscribe on a second connection: the smoke decision above
            // is already published, so the first pushed batch carries it.
            let mut tail = Client::connect(addr, Duration::from_secs(10)).expect("tail connect");
            tail.subscribe(0).expect("subscribe");
            let EventBatch { events, dropped } = tail.next_events().expect("pushed batch");
            assert!(
                events.iter().any(|e| e.verdict.label() == "allowed"),
                "stream carries the allowed smoke decision"
            );
            assert_eq!(dropped, 0, "nothing evicted under smoke load");
            for e in &events {
                println!("{}", tail_line(e, dropped));
            }
        }

        if metrics {
            // Scrape the observability surface over the wire: the journal
            // must have recorded the decision above, and the exposition
            // must carry the expected families.
            let page = c.journal(0, 64).expect("journal");
            assert!(
                page.events.iter().any(|e| e.verdict.label() == "allowed"),
                "journal records the allowed smoke decision"
            );
            let text = c.metrics().expect("metrics");
            assert!(
                text.contains("bep_decisions_total"),
                "exposition carries the decision counters"
            );
            println!("smoke: metrics exposition ({} bytes):", text.len());
            print!("{text}");
        }

        c.shutdown_server().expect("shutdown handshake");
        println!("smoke: shutdown acknowledged");
    });

    // The server must notice the client's shutdown request and drain.
    server.wait();
    client_side.join().expect("client thread");
    assert_eq!(proxy.session_count(), 0, "no orphan sessions after drain");

    let stats = proxy.stats();
    assert_eq!(stats.allowed, 1, "exactly the smoke query was allowed");
    println!(
        "smoke: clean shutdown verified (allowed={}, p50={:.1}us)",
        stats.allowed,
        stats.latency.p50_us()
    );
    println!(
        "audit: writes allowed={} blocked={} passthrough={}; {} statement(s) \
         bypassed enforcement via execute_unchecked",
        stats.write_allowed,
        stats.write_blocked,
        stats.write_passthrough,
        stats.unchecked_statements
    );
    println!("smoke: OK");
}
