//! Serves the calendar application's enforcement proxy over TCP.
//!
//! Seeds the calendar database, wraps it in the enforcing `SqlProxy`, and
//! exposes it through `bep-server`'s wire protocol. Clients connect with
//! `bep_server::Client`, open sessions with their `MyUId`, and every
//! `SELECT` they send is decided against the calendar policy — the
//! networked version of the `calendar_proxy` example.
//!
//! Run a long-lived server (stops when a client sends `shutdown`):
//!
//! ```text
//! cargo run --example serve_calendar -- 127.0.0.1:4270
//! ```
//!
//! Run the self-contained smoke check used by CI — starts the server on
//! an ephemeral port, drives one `Begin`/`Execute`/`End` round-trip
//! through the client, asks for shutdown, and verifies a clean drain:
//!
//! ```text
//! cargo run --example serve_calendar -- --smoke
//! ```

use std::sync::Arc;
use std::time::Duration;

use appsim::{seed_app, Scale, CALENDAR};
use bep_server::{Client, ExecOutcome, Server, ServerConfig};
use beyond_enforcement::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sqlir::Value;

fn calendar_proxy() -> Arc<SqlProxy> {
    let mut rng = SmallRng::seed_from_u64(2023);
    let mut db = CALENDAR.empty_db();
    seed_app("calendar", &mut db, &mut rng, &Scale::medium());
    let schema = CALENDAR.schema();
    let policy = CALENDAR.policy().expect("calendar policy compiles");
    Arc::new(SqlProxy::new(
        db,
        ComplianceChecker::new(schema, policy),
        ProxyConfig::default(),
    ))
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg == "--smoke" {
        smoke();
        return;
    }
    let bind = if arg.is_empty() {
        "127.0.0.1:4270".to_string()
    } else {
        arg
    };

    let proxy = calendar_proxy();
    let server =
        Server::start(proxy, ServerConfig::default(), &bind).expect("bind enforcement server");
    println!(
        "bep-server: serving the calendar policy on {}",
        server.addr()
    );
    println!(
        "  protocol : length-prefixed JSON frames, version {}",
        bep_server::PROTOCOL_VERSION
    );
    println!("  stop with: a client `shutdown` request");
    server.wait();
    println!("bep-server: drained and stopped");
}

/// The CI smoke check: one full client round-trip and a clean shutdown.
fn smoke() {
    let proxy = calendar_proxy();
    let server = Server::start(Arc::clone(&proxy), ServerConfig::default(), "127.0.0.1:0")
        .expect("bind enforcement server");
    let addr = server.addr();
    println!("smoke: server on {addr}");

    let client_side = std::thread::spawn(move || {
        let io = Duration::from_secs(10);
        let mut c = Client::connect(addr, io).expect("connect");

        // Begin: a calendar user session (the data generator's first uid).
        let session = c
            .begin(vec![("MyUId".into(), Value::Int(appsim::FIRST_UID))])
            .expect("begin session");
        println!("smoke: began session {session}");

        // Execute: the policy's own attendance view is always allowed.
        let r = c
            .execute(
                session,
                "SELECT EId FROM Attendance WHERE UId = ?MyUId",
                &[],
            )
            .expect("execute");
        match &r {
            ExecOutcome::Rows(rows) => {
                println!(
                    "smoke: executed, {} row(s) allowed through",
                    rows.rows.len()
                );
            }
            other => panic!("expected rows, got {other:?}"),
        }

        // End: idempotent teardown.
        assert!(c.end(session).expect("end"), "session was live");
        assert!(!c.end(session).expect("end again"), "second end is a no-op");
        println!("smoke: session ended cleanly");

        c.shutdown_server().expect("shutdown handshake");
        println!("smoke: shutdown acknowledged");
    });

    // The server must notice the client's shutdown request and drain.
    server.wait();
    client_side.join().expect("client thread");
    assert_eq!(proxy.session_count(), 0, "no orphan sessions after drain");

    let stats = proxy.stats();
    assert_eq!(stats.allowed, 1, "exactly the smoke query was allowed");
    println!(
        "smoke: clean shutdown verified (allowed={}, p50={:.1}us)",
        stats.allowed,
        stats.latency.p50_us()
    );
    println!("smoke: OK");
}
