//! Violation triage (a miniature of experiment T5): run the calendar app's
//! *buggy* handlers under enforcement, catch the blocked queries, and run
//! the full §5 diagnosis — counterexample plus ranked patches.
//!
//! Run with: `cargo run --example violation_triage`

use appsim::{ProxyPort, CALENDAR};
use beyond_enforcement::prelude::*;

fn main() {
    let mut db = CALENDAR.empty_db();
    db.execute_sql("INSERT INTO Users (UId, Name) VALUES (101, 'ann'), (102, 'bob')")
        .unwrap();
    db.execute_sql(
        "INSERT INTO Events (EId, Title, Kind) VALUES (1, 'standup', 'work'), \
         (2, 'offsite', 'work')",
    )
    .unwrap();
    db.execute_sql("INSERT INTO Attendance (UId, EId, Notes) VALUES (101, 1, NULL)")
        .unwrap();

    let schema = CALENDAR.schema();
    let policy = CALENDAR.policy().unwrap();
    let checker = ComplianceChecker::new(schema.clone(), policy.clone());
    let proxy = SqlProxy::new(db, checker, ProxyConfig::default());

    // Ann runs the buggy handler: fetch event 2 (which she does NOT attend)
    // without the access check.
    let app = CALENDAR.app_with_bugs();
    let handler = app.handler("show_event_nocheck").unwrap();
    let session_bindings = vec![("MyUId".to_string(), Value::Int(101))];
    let session = proxy.begin_session(session_bindings.clone());
    let mut port = ProxyPort {
        proxy: &proxy,
        session,
    };
    let result = run_handler(
        &mut port,
        handler,
        &session_bindings,
        &[("event_id".into(), Value::Int(2))],
        Limits::default(),
    )
    .unwrap();

    let Outcome::Blocked { sql } = &result.outcome else {
        panic!(
            "the buggy handler must get blocked, got {:?}",
            result.outcome
        );
    };
    println!("the proxy blocked: {sql}\n");

    // Diagnose: translate the blocked query, instantiate for the session,
    // and run the full pipeline (with extraction supplying policy patches).
    let blocked = parse_query(sql).unwrap();
    let ucq = qlogic::sql_to_ucq(&schema, &blocked).unwrap();
    let query = ucq.disjuncts[0].instantiate(&[
        ("MyUId".into(), Value::Int(101)),
        ("event_id".into(), Value::Int(2)),
    ]);
    let views = policy.instantiate(&session_bindings).unwrap();

    // Run extraction over the *updated* app (including the new handler), as
    // §5.2.1 prescribes for policy patches.
    let opts = ViewGenOptions {
        session_params: vec!["MyUId".into()],
    };
    let extracted = extract_symbolic(&schema, &app, SymLimits::default(), &opts)
        .expect("extraction")
        .views;

    let report = beyond_enforcement::diagnose::diagnose(&DiagnosisInput {
        query: &query,
        views: &views,
        trace_facts: proxy.session_trace(session).unwrap().facts(),
        schema: &schema,
        extracted: Some(&extracted),
    })
    .expect("diagnosis");

    println!("{report}");

    println!("interpretation:");
    println!("  - the access-check patch reproduces exactly Listing 1's if-statement;");
    println!("  - the query-rewrite patch narrows the fetch to attended events;");
    println!("  - the policy patch would whitelist what the new handler reveals —");
    println!("    Dora decides which reflects the intent.");
}
