//! Policy extraction across all four applications (a miniature of
//! experiment T1): symbolic execution vs black-box mining, scored against
//! each application's ground-truth policy.
//!
//! Run with: `cargo run --example extraction_report`

use appsim::{seed_app, workload_for, Scale, ALL_APPS};
use beyond_enforcement::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!(
        "{:<10} {:>6} | {:>9} {:>7} {:>7} | {:>9} {:>7} {:>7}",
        "app", "truth", "sym-views", "sym-P", "sym-R", "min-views", "min-P", "min-R"
    );
    println!("{}", "-".repeat(84));

    for app in ALL_APPS {
        let schema = app.schema();
        let truth = app.ground_truth_cqs();

        // Language-based: symbolic execution (§3.2.1).
        let opts = ViewGenOptions {
            session_params: app.session_params.iter().map(|s| s.to_string()).collect(),
        };
        let symbolic =
            extract_symbolic(&schema, &app.app(), SymLimits::default(), &opts).expect("symex");
        let sym_score = score_semantic_deps(&symbolic.views, &truth, &schema.dependencies());

        // Language-agnostic: black-box mining (§3.2.2).
        let mut rng = SmallRng::seed_from_u64(7);
        let mut db = app.empty_db();
        seed_app(app.name, &mut db, &mut rng, &Scale::small());
        let requests = workload_for(app.name, &db, &mut rng, 120).expect("workload");
        let options = MineOptions {
            hints: Hints::id_columns(&schema),
            ..Default::default()
        };
        let mined = extract_mined(&db, &app.app(), &schema, &requests, &options).expect("mining");
        let mined_score = score_semantic_deps(&mined, &truth, &schema.dependencies());

        println!(
            "{:<10} {:>6} | {:>9} {:>6.2} {:>6.2} | {:>9} {:>6.2} {:>6.2}",
            app.name,
            truth.len(),
            symbolic.views.len(),
            sym_score.precision,
            sym_score.recall,
            mined.len(),
            mined_score.precision,
            mined_score.recall,
        );
    }

    println!("\n(P = precision, R = recall; scored by semantic coverage —");
    println!(" a truth view counts as recovered when it has an equivalent");
    println!(" rewriting over the extracted views.)");
}
