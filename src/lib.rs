//! `beyond-enforcement`: the full life-cycle of data-access control for
//! database-backed applications.
//!
//! This workspace implements the system envisioned by *"Access Control for
//! Database Applications: Beyond Policy Enforcement"* (HotOS '23): a
//! Blockaid-style view-based enforcement proxy **plus** the three
//! beyond-enforcement tools the paper proposes — policy extraction, policy
//! evaluation for sensitive-data disclosure, and violation diagnosis with
//! patch generation.
//!
//! The member crates, re-exported here:
//!
//! | crate | role |
//! |---|---|
//! | [`sqlir`] | SQL lexer/parser/AST/printer |
//! | [`minidb`] | in-memory relational engine with constraints |
//! | [`qlogic`] | conjunctive-query logic: containment, rewriting |
//! | [`core`] (`bep-core`) | policies, traces, compliance checker, proxy |
//! | [`appdsl`] | the handler language + interpreter |
//! | [`extract`] (`bep-extract`) | §3: symbolic + mining extraction |
//! | [`disclose`] (`bep-disclose`) | §4: PQI/NQI/k-anon/Bayes |
//! | [`diagnose`] (`bep-diagnose`) | §5: counterexamples + patches |
//! | [`appsim`] | four simulated applications + workloads |
//!
//! # Quickstart: the paper's Example 2.1, end to end
//!
//! ```
//! use beyond_enforcement::prelude::*;
//!
//! // Database and schema (the calendar app from the paper).
//! let mut db = Database::new();
//! db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)").unwrap();
//! db.execute_sql("CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT)").unwrap();
//! db.execute_sql("INSERT INTO Events (EId, Title, Kind) VALUES (2, 'standup', 'work')").unwrap();
//! db.execute_sql("INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 2, NULL)").unwrap();
//!
//! // The policy: views V1 and V2, parameterized by ?MyUId.
//! let schema = schema_of_database(&db);
//! let policy = Policy::from_sql(&schema, &[
//!     ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
//!     ("V2", "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
//!             WHERE a.UId = ?MyUId"),
//! ]).unwrap();
//!
//! // The proxy enforces; the trace makes Q2 allowable after Q1.
//! let checker = ComplianceChecker::new(schema, policy);
//! let proxy = SqlProxy::new(db, checker, ProxyConfig::default());
//! let session = proxy.begin_session(vec![("MyUId".into(), Value::Int(1))]);
//!
//! let q1 = proxy.execute(session, "SELECT 1 FROM Attendance \
//!     WHERE UId = ?MyUId AND EId = 2", &[]).unwrap();
//! assert!(q1.is_allowed());
//!
//! let q2 = proxy.execute(session, "SELECT * FROM Events WHERE EId = 2", &[]).unwrap();
//! assert!(q2.is_allowed(), "Q2 is allowed only because Q1 returned a row");
//! ```

#![warn(missing_docs)]

pub use appdsl;
pub use appsim;
pub use bep_core as core;
pub use bep_diagnose as diagnose;
pub use bep_disclose as disclose;
pub use bep_extract as extract;
pub use minidb;
pub use qlogic;
pub use sqlir;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use appdsl::{parse_app, parse_handler, run_handler, Limits, Outcome, Request};
    pub use bep_core::{
        schema_of_database, template_hash, CacheTier, ComplianceChecker, Decision, DecisionEvent,
        DenyReason, EventJournal, JournalCursor, MetricsRegistry, Observation, Phase, Policy,
        ProxyConfig, ProxyResponse, SqlProxy, Trace, Verdict, PHASE_COUNT,
    };
    pub use bep_diagnose::{diagnose, diagnose_write, DiagnosisInput, DiagnosisReport, Patch};
    pub use bep_disclose::{audit, BayesConfig, RelationSpec, Universe};
    pub use bep_extract::{
        collect_traces, extract_mined, extract_symbolic, mine_policy, score_exact,
        score_exact_deps, score_semantic, score_semantic_deps, Hints, Learner, MineOptions,
        SymLimits, ViewGenOptions,
    };
    pub use minidb::{Database, Rows};
    pub use qlogic::{Cq, RelSchema, Term, ViewSet};
    pub use sqlir::{parse_query, parse_statement, Value};
}

use prelude::*;

/// A one-stop pipeline over a single application: extract a draft policy,
/// audit it, enforce it, and diagnose violations — the full life-cycle the
/// paper argues access-control research must cover.
pub struct Lifecycle {
    /// The application (handler code).
    pub app: appdsl::App,
    /// The relational schema.
    pub schema: RelSchema,
    /// The current policy (may start empty and be filled by extraction).
    pub policy: Policy,
}

impl Lifecycle {
    /// Starts a lifecycle around an application and schema with an empty
    /// policy.
    pub fn new(app: appdsl::App, schema: RelSchema) -> Lifecycle {
        Lifecycle {
            app,
            schema,
            policy: Policy::empty(),
        }
    }

    /// §3: extracts a draft policy by symbolic execution and installs it.
    pub fn extract_policy(
        &mut self,
        opts: &ViewGenOptions,
    ) -> Result<usize, bep_extract::ExtractError> {
        let extracted =
            bep_extract::extract_symbolic(&self.schema, &self.app, SymLimits::default(), opts)?;
        let n = extracted.views.len();
        self.policy = extracted
            .into_policy()
            .map_err(|e| bep_extract::ExtractError::Logic(e.to_string()))?;
        Ok(n)
    }

    /// §4: audits the installed policy against a sensitive query.
    pub fn audit_sensitive(
        &self,
        sensitive: &Cq,
        bindings: &[(String, Value)],
    ) -> Result<bep_disclose::DisclosureReport, bep_disclose::DiscloseError> {
        let views = self
            .policy
            .instantiate(bindings)
            .map_err(|e| bep_disclose::DiscloseError::Logic(e.to_string()))?;
        bep_disclose::audit(sensitive, &views, None, None)
    }

    /// §2: wraps a database in an enforcing proxy for the installed policy.
    pub fn enforce(&self, db: Database) -> SqlProxy {
        let checker = ComplianceChecker::new(self.schema.clone(), self.policy.clone());
        SqlProxy::new(db, checker, ProxyConfig::default())
    }

    /// §5: diagnoses a blocked query under the installed policy.
    pub fn diagnose_blocked(
        &self,
        query: &Cq,
        bindings: &[(String, Value)],
        trace_facts: &[qlogic::Atom],
    ) -> Result<DiagnosisReport, bep_diagnose::DiagnoseError> {
        let views = self
            .policy
            .instantiate(bindings)
            .map_err(|e| bep_diagnose::DiagnoseError::Logic(e.to_string()))?;
        bep_diagnose::diagnose(&DiagnosisInput {
            query,
            views: &views,
            trace_facts,
            schema: &self.schema,
            extracted: None,
        })
    }

    /// §5, write path: diagnoses a rejected mutation under the installed
    /// policy. `row_query` is the written-row query the proxy attaches to
    /// a `WriteNotCovered` denial.
    pub fn diagnose_rejected_write(
        &self,
        row_query: &Cq,
        bindings: &[(String, Value)],
        trace_facts: &[qlogic::Atom],
    ) -> Result<DiagnosisReport, bep_diagnose::DiagnoseError> {
        let views = self
            .policy
            .instantiate(bindings)
            .map_err(|e| bep_diagnose::DiagnoseError::Logic(e.to_string()))?;
        bep_diagnose::diagnose_write(&DiagnosisInput {
            query: row_query,
            views: &views,
            trace_facts,
            schema: &self.schema,
            extracted: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appsim::CALENDAR;

    #[test]
    fn lifecycle_extract_enforce() {
        let mut lc = Lifecycle::new(CALENDAR.app(), CALENDAR.schema());
        let n = lc.extract_policy(&ViewGenOptions::default()).unwrap();
        assert!(n >= 4, "calendar extraction yields several views, got {n}");

        // The extracted policy admits the app's own behaviour.
        let mut db = CALENDAR.empty_db();
        db.execute_sql("INSERT INTO Users (UId, Name) VALUES (101, 'ann')")
            .unwrap();
        db.execute_sql("INSERT INTO Events (EId, Title, Kind) VALUES (1, 'standup', 'work')")
            .unwrap();
        db.execute_sql("INSERT INTO Attendance (UId, EId, Notes) VALUES (101, 1, NULL)")
            .unwrap();
        let proxy = lc.enforce(db);
        let session = proxy.begin_session(vec![("MyUId".into(), Value::Int(101))]);
        let mut port = appsim::ProxyPort {
            proxy: &proxy,
            session,
        };
        let result = run_handler(
            &mut port,
            lc.app.handler("show_event").unwrap(),
            &[("MyUId".to_string(), Value::Int(101))],
            &[("event_id".into(), Value::Int(1))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(
            result.outcome,
            Outcome::Ok,
            "extracted policy admits the app"
        );
    }

    #[test]
    fn lifecycle_diagnose_blocked_query() {
        let mut lc = Lifecycle::new(CALENDAR.app(), CALENDAR.schema());
        lc.extract_policy(&ViewGenOptions::default()).unwrap();
        // A query outside the extracted policy: someone else's notes.
        let blocked = Cq::new(
            vec![Term::var("n")],
            vec![qlogic::Atom::new(
                "Attendance",
                vec![Term::int(999), Term::var("e"), Term::var("n")],
            )],
            vec![],
        );
        let report = lc
            .diagnose_blocked(&blocked, &[("MyUId".to_string(), Value::Int(101))], &[])
            .unwrap();
        assert!(!report.patches.is_empty() || report.counterexample.is_some());
    }
}
