//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so the workspace patches
//! `criterion` to this crate (see `[patch.crates-io]` in the root manifest).
//! It implements the API subset the `bep-bench` benches use — groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter` — with a simple
//! measure-and-print harness: a short warm-up, then timed batches, reporting
//! the median per-iteration time. No statistics engine, no HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier with an optional parameter (e.g. `views/8`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    last_per_iter: Duration,
}

impl Bencher {
    /// Times `f`, recording the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run a few iterations untimed.
        for _ in 0..2 {
            black_box(f());
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            per_iter.push(start.elapsed());
        }
        per_iter.sort_unstable();
        self.last_per_iter = per_iter[per_iter.len() / 2];
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            last_per_iter: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}/{}: median {:?} per iteration ({} samples)",
            self.name, id, b.last_per_iter, self.samples
        );
    }

    /// Benchmarks one closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(id.name, |b| f(b));
        self
    }

    /// Benchmarks one closure with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(id.name, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks one closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group("bench");
        group.run(id.name, |b| f(b));
        self
    }
}

/// Declares a group of benchmark functions (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut ran = 0;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        assert!(ran >= 5, "closure ran {ran} times");
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        group.finish();
    }
}
