//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace patches `parking_lot` to this crate (see `[patch.crates-io]` in
//! the root manifest). Only the API subset the workspace uses is provided:
//! [`Mutex`] and [`RwLock`] with non-poisoning guards (a poisoned std lock is
//! recovered transparently, matching parking_lot's no-poisoning semantics).

use std::sync::PoisonError;

/// A mutual exclusion primitive (see `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (see `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_concurrent_reads() {
        let l = Arc::new(RwLock::new(7));
        let l2 = Arc::clone(&l);
        let r1 = l.read();
        let t = std::thread::spawn(move || *l2.read());
        assert_eq!(t.join().unwrap(), 7);
        drop(r1);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
