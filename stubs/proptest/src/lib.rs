//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so the workspace patches
//! `proptest` to this crate (see `[patch.crates-io]` in the root manifest).
//! It is a *minimal but real* property-testing engine covering the API the
//! workspace's tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive`,
//!   `boxed`, plus strategies for integer ranges, tuples, [`strategy::Just`],
//!   [`any`], regex-lite string literals, [`collection::vec`],
//!   [`option::of`], [`sample::select`] and [`sample::subsequence`];
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, `prop_assert!`,
//!   `prop_assert_eq!`, and `prop_assume!`.
//!
//! Differences from real proptest: failing inputs are **not shrunk** (the
//! original failing case is reported verbatim), string strategies support
//! only the character-class/repetition regex subset the tests use, and case
//! seeding is deterministic per test name, so failures reproduce exactly.

pub mod strategy {
    //! The strategy trait and combinators.

    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::fmt;
    use std::sync::Arc;

    /// A generator of random values (shrink-free subset of
    /// `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The generated type.
        type Value: fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `f` receives the strategy for the
        /// smaller level and returns the composite level. Depth is bounded
        /// by `depth`; every level mixes in the leaf to terminate early.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf: BoxedStrategy<Self::Value> = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let rec = f(strat).boxed();
                strat = Union::new(vec![leaf.clone(), rec]).boxed();
            }
            strat
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            self.0.generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between strategies of the same value type (backs
    /// `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: fmt::Debug> Union<T> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// String strategy from a regex-lite pattern (`&'static str` literals
    /// in test sources): a sequence of literal characters or `[...]`
    /// classes, each optionally followed by `{n}` / `{m,n}`. Classes
    /// support ranges, `^` negation over printable ASCII, and `&&`
    /// intersection with nested classes.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut SmallRng) -> String {
            let items = crate::pattern::parse(self);
            let mut out = String::new();
            for (set, lo, hi) in &items {
                let n = if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..=*hi)
                };
                for _ in 0..n {
                    if !set.is_empty() {
                        out.push(set[rng.gen_range(0..set.len())]);
                    }
                }
            }
            out
        }
    }

    /// Values with a canonical "any" strategy (subset of
    /// `proptest::arbitrary::Arbitrary`).
    pub trait ArbitraryValue: fmt::Debug + Sized {
        /// Draws a uniform value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.gen::<bool>()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// The strategy returned by [`any`](crate::any).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Any<T> {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The canonical strategy for a type (uniform over the whole domain).
pub fn any<T: strategy::ArbitraryValue>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::fmt;

    /// An inclusive size range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        /// Draws one size.
        pub fn sample(&self, rng: &mut SmallRng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..=self.hi)
            }
        }

        /// The inclusive bounds.
        pub fn bounds(&self) -> (usize, usize) {
            (self.lo, self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Option strategies.

    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::fmt;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some` of the inner strategy three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod sample {
    //! Sampling strategies over fixed value sets.

    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::fmt;

    /// The strategy returned by [`select`].
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            self.values[rng.gen_range(0..self.values.len())].clone()
        }
    }

    /// Uniform choice from a fixed set of values.
    pub fn select<T: Clone + fmt::Debug + 'static>(values: impl Into<Vec<T>>) -> Select<T> {
        let values = values.into();
        assert!(!values.is_empty(), "select over an empty set");
        Select { values }
    }

    /// The strategy returned by [`subsequence`].
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone + fmt::Debug> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<T> {
            let (lo, hi) = self.size.bounds();
            let hi = hi.min(self.values.len());
            let lo = lo.min(hi);
            let k = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
            // Reservoir-free order-preserving pick: walk the values keeping
            // each with the probability needed to reach exactly k picks.
            let mut picked = Vec::with_capacity(k);
            let mut remaining_slots = k;
            for (i, v) in self.values.iter().enumerate() {
                if remaining_slots == 0 {
                    break;
                }
                let remaining_values = self.values.len() - i;
                if rng.gen_range(0..remaining_values) < remaining_slots {
                    picked.push(v.clone());
                    remaining_slots -= 1;
                }
            }
            picked
        }
    }

    /// An order-preserving random subsequence with size in `size`.
    pub fn subsequence<T: Clone + fmt::Debug + 'static>(
        values: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> Subsequence<T> {
        Subsequence {
            values,
            size: size.into(),
        }
    }
}

pub(crate) mod pattern {
    //! The regex-lite subset backing string strategies.

    /// Parses a pattern into `(character set, min reps, max reps)` items.
    pub fn parse(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
        let chars: Vec<char> = pat.chars().collect();
        let mut items = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = if chars[i] == '[' {
                let mut depth = 1;
                let start = i + 1;
                let mut j = start;
                while j < chars.len() {
                    match chars[j] {
                        '[' => depth += 1,
                        ']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                assert!(j < chars.len(), "unterminated class in pattern {pat:?}");
                let body: String = chars[start..j].iter().collect();
                i = j + 1;
                parse_class(&body)
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (mut lo, mut hi) = (1usize, 1usize);
            if i < chars.len() && chars[i] == '{' {
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '}' {
                    j += 1;
                }
                assert!(j < chars.len(), "unterminated quantifier in {pat:?}");
                let q: String = chars[i + 1..j].iter().collect();
                if let Some((a, b)) = q.split_once(',') {
                    lo = a.trim().parse().expect("quantifier lower bound");
                    hi = b.trim().parse().expect("quantifier upper bound");
                } else {
                    lo = q.trim().parse().expect("quantifier count");
                    hi = lo;
                }
                i = j + 1;
            }
            items.push((set, lo, hi));
        }
        items
    }

    /// Printable-ASCII universe used for negated classes.
    fn universe() -> Vec<char> {
        (0x20u8..=0x7E).map(char::from).collect()
    }

    /// Parses a class body (no outer brackets), handling `&&` intersection
    /// with plain or nested `[..]` operands and `^` negation.
    fn parse_class(body: &str) -> Vec<char> {
        let cs: Vec<char> = body.chars().collect();
        let mut parts: Vec<String> = Vec::new();
        let mut cur = String::new();
        let mut depth = 0usize;
        let mut i = 0;
        while i < cs.len() {
            if depth == 0 && i + 1 < cs.len() && cs[i] == '&' && cs[i + 1] == '&' {
                parts.push(std::mem::take(&mut cur));
                i += 2;
                continue;
            }
            match cs[i] {
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                _ => {}
            }
            cur.push(cs[i]);
            i += 1;
        }
        parts.push(cur);

        let mut result: Option<Vec<char>> = None;
        for part in parts {
            let part = part
                .strip_prefix('[')
                .and_then(|p| p.strip_suffix(']'))
                .unwrap_or(&part);
            let (negated, items) = match part.strip_prefix('^') {
                Some(rest) => (true, rest),
                None => (false, part),
            };
            let set = parse_items(items);
            let part_set: Vec<char> = if negated {
                universe()
                    .into_iter()
                    .filter(|c| !set.contains(c))
                    .collect()
            } else {
                set
            };
            result = Some(match result {
                None => part_set,
                Some(prev) => prev.into_iter().filter(|c| part_set.contains(c)).collect(),
            });
        }
        result.unwrap_or_default()
    }

    /// Parses plain class items: `a-z` ranges and single characters.
    fn parse_items(items: &str) -> Vec<char> {
        let cs: Vec<char> = items.chars().collect();
        let mut set = Vec::new();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (lo, hi) = (cs[i], cs[i + 2]);
                assert!(lo <= hi, "inverted class range {lo}-{hi}");
                for c in lo..=hi {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(cs[i]);
                i += 1;
            }
        }
        set.sort_unstable();
        set.dedup();
        set
    }
}

pub mod test_runner {
    //! The case loop behind the [`proptest!`](crate::proptest) macro.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases each property must pass.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the whole property fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs — the case is re-drawn.
        Reject,
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected case.
        pub fn reject() -> TestCaseError {
            TestCaseError::Reject
        }
    }

    /// Deterministic per-test, per-attempt generator: failures reproduce
    /// without recording seeds.
    pub fn rng_for(test_name: &str, attempt: u64) -> SmallRng {
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        attempt.hash(&mut h);
        SmallRng::seed_from_u64(h.finish())
    }
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $(let $arg = $strat;)*
                let __config: $crate::test_runner::Config = $cfg;
                let __cases = u64::from(__config.cases);
                let __max_attempts = __cases.saturating_mul(20);
                let mut __passed: u64 = 0;
                let mut __attempt: u64 = 0;
                while __passed < __cases && __attempt < __max_attempts {
                    let mut __rng = $crate::test_runner::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        __attempt,
                    );
                    __attempt += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)*
                    let __inputs: String = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),*),
                        $(&$arg),*
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "property `{}` failed at attempt {}: {}\ninputs:\n{}",
                                stringify!($name),
                                __attempt - 1,
                                __msg,
                                __inputs,
                            );
                        }
                    }
                }
                assert!(
                    __passed >= __cases,
                    "property `{}` rejected too many cases ({} passed of {})",
                    stringify!($name),
                    __passed,
                    __config.cases,
                );
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __lhs == __rhs,
            "assertion failed: `{:?}` != `{:?}`",
            __lhs,
            __rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __lhs == __rhs,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __lhs,
            __rhs,
            format!($($fmt)*)
        );
    }};
}

/// Rejects the current case unless the precondition holds; the runner
/// re-draws instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Uniform choice between the listed strategies (all must share a value
/// type). Weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($item)),+
        ])
    };
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_classes_and_reps() {
        let mut rng = crate::test_runner::rng_for("pattern", 0);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!((1..=7).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = "[ -~&&[^']]{0,8}".generate(&mut rng);
            assert!(
                t.chars().all(|c| (' '..='~').contains(&c) && c != '\''),
                "{t:?}"
            );
            let u = "[a-z '☃]{0,8}".generate(&mut rng);
            assert!(u
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == ' ' || c == '\'' || c == '☃'));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![(0i64..3).prop_map(|v| v * 10), Just(-1i64),];
        let mut rng = crate::test_runner::rng_for("oneof", 1);
        let mut saw_just = false;
        let mut saw_range = false;
        for _ in 0..100 {
            match strat.generate(&mut rng) {
                -1 => saw_just = true,
                v if [0, 10, 20].contains(&v) => saw_range = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(saw_just && saw_range);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn subsequence_preserves_order(
            items in crate::collection::vec(0i64..100, 0..10),
        ) {
            let sub = crate::sample::subsequence(items.clone(), 0..=3);
            let mut rng = crate::test_runner::rng_for("sub", 0);
            let picked = sub.generate(&mut rng);
            prop_assert!(picked.len() <= 3.min(items.len()));
            // Order-preserving: picked is a subsequence of items.
            let mut it = items.iter();
            for p in &picked {
                prop_assert!(it.any(|v| v == p), "{:?} not a subsequence of {:?}", picked, items);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0i64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
