//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `rand` to this crate (see `[patch.crates-io]` in the root manifest). It
//! provides the subset the workspace uses — the [`Rng`] trait with
//! `gen_range`/`gen_bool`/`gen`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::SmallRng`] — with a deterministic xoshiro256++ generator, so
//! seeded workloads remain reproducible across runs and platforms.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Uniform draw from `[0, span)` by rejection sampling (avoids modulo bias).
fn uniform_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Zone is the largest multiple of `span` that fits in u64 draws; with a
    // u64 source a single draw suffices for every span the workspace uses.
    let zone = u64::MAX - (u64::MAX % span as u64 + 1) % span as u64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span as u64) as u128;
        }
    }
}

/// The random generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit source.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        // 53 bits of mantissa — same construction as rand's standard float.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types constructible from a uniform 64-bit draw (stand-in for sampling
/// `rand::distributions::Standard`).
pub trait Standard {
    /// Builds a uniform value from raw bits.
    fn from_u64(bits: u64) -> Self;
}

impl Standard for bool {
    fn from_u64(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn from_u64(bits: u64) -> u64 {
        bits
    }
}

impl Standard for i64 {
    fn from_u64(bits: u64) -> i64 {
        bits as i64
    }
}

impl Standard for u32 {
    fn from_u64(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for i32 {
    fn from_u64(bits: u64) -> i32 {
        (bits >> 32) as i32
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++, seeded via
    /// SplitMix64 — the same construction real `SmallRng` uses on 64-bit
    /// targets).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0i64..10);
            assert!((0..10).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&trues), "p=0.3 gave {trues}/10000");
    }
}
